// Multichannel: the paper's motivating workload — several live channels
// with Zipf-skewed audiences, each with its own helper pool, plus an origin
// server absorbing whatever the helpers cannot supply. Prints per-channel
// quality and the server's load.
package main

import (
	"fmt"
	"log"

	"rths"
)

func main() {
	mk := func(n int) []rths.HelperSpec {
		hs := make([]rths.HelperSpec, n)
		for j := range hs {
			hs[j] = rths.DefaultHelperSpec()
		}
		return hs
	}
	// Popular channels get bigger audiences (Zipf); the helper-level
	// allocator (the paper's §V extension) splits an 11-helper pool by
	// aggregate demand before peer-level RTHS runs inside each channel.
	audiences := []int{24, 12, 6}
	bitrates := []float64{400, 300, 250}
	demands := make([]rths.ChannelDemand, 3)
	names := []string{"premier-league", "news-24", "cooking"}
	for c := range demands {
		demands[c] = rths.ChannelDemand{
			Name:   names[c],
			Demand: float64(audiences[c]) * bitrates[c],
		}
	}
	counts, err := rths.SplitHelperPool(demands, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("helper pool split by demand: %v\n\n", counts)

	channels := make([]rths.ChannelConfig, 3)
	for c := range channels {
		channels[c] = rths.ChannelConfig{
			Name:         names[c],
			Bitrate:      bitrates[c],
			Helpers:      mk(counts[c]),
			InitialPeers: audiences[c],
		}
	}
	multi, err := rths.NewMultiChannel(rths.MultiChannelConfig{Channels: channels, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	server, err := rths.NewServer(8000)
	if err != nil {
		log.Fatal(err)
	}

	const stages = 3000
	type channelAgg struct{ welfare, optimum float64 }
	agg := map[string]*channelAgg{}
	for s := 0; s < stages; s++ {
		res, err := multi.Step()
		if err != nil {
			log.Fatal(err)
		}
		// The origin tops up every channel's unmet demand.
		if _, err := server.ServeStage([]float64{res.TotalServerLoad}); err != nil {
			log.Fatal(err)
		}
		if s < stages/2 {
			continue
		}
		for _, ch := range res.Channels {
			a := agg[ch.Name]
			if a == nil {
				a = &channelAgg{}
				agg[ch.Name] = a
			}
			a.welfare += ch.Result.Welfare
			a.optimum += ch.Result.OptWelfare
		}
	}

	fmt.Println("channel            welfare/optimum")
	for _, name := range names {
		a := agg[name]
		fmt.Printf("%-18s %.1f%%\n", name, 100*a.welfare/a.optimum)
	}
	fmt.Printf("\norigin server: mean load %.1f kbps, saturated %.1f%% of stages\n",
		server.MeanLoad(), 100*server.OverloadFraction())
}
