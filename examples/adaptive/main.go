// Adaptive: the tracking-vs-matching story under non-stationarity. Two
// helpers swap capacities mid-run (900 ↔ 450 kbps); the recency-weighted
// tracker re-balances its load split within a few hundred stages while the
// uniform-average matcher keeps trusting its stale history. This is the
// paper's core argument for regret *tracking* over regret *matching*.
package main

import (
	"fmt"
	"log"

	"rths"
)

const (
	peers   = 12
	stages  = 4000
	swapAt  = stages / 2
	strongC = 900.0
	weakC   = 450.0
)

// run returns helper 0's load share before the swap, right after it, and at
// the end. Helper 0 starts strong (equilibrium share 2/3) and ends weak
// (equilibrium share 1/3).
func run(mode rths.LearnerMode) (pre, early, final float64) {
	cfg := rths.DefaultLearnerConfig(2, 1)
	cfg.Mode = mode
	sys, err := rths.NewSystem(rths.SystemConfig{
		NumPeers: peers,
		Helpers: []rths.HelperSpec{
			{Levels: []float64{strongC}},
			{Levels: []float64{weakC}},
		},
		Factory: func(_, m int, _ float64) (rths.Selector, error) {
			c := cfg
			c.NumActions = m
			return rths.NewLearner(c)
		},
		Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}

	share := func(from, to int) float64 {
		sum := 0.0
		for k := from; k < to; k++ {
			r, err := sys.Step()
			if err != nil {
				log.Fatal(err)
			}
			sum += float64(r.Loads[0])
		}
		return sum / float64((to-from)*peers)
	}
	_ = share(0, swapAt-500)
	pre = share(swapAt-500, swapAt)
	if err := sys.SetHelperLevels(0, []float64{weakC}, 0); err != nil {
		log.Fatal(err)
	}
	if err := sys.SetHelperLevels(1, []float64{strongC}, 0); err != nil {
		log.Fatal(err)
	}
	early = share(swapAt, swapAt+500)
	_ = share(swapAt+500, stages-500)
	final = share(stages-500, stages)
	return pre, early, final
}

func main() {
	fmt.Println("helper 0 load share; proportional equilibrium: 0.67 before the swap, 0.33 after")
	fmt.Println()
	fmt.Println("mode       pre-swap  first-500-after  final")
	for _, mode := range []rths.LearnerMode{rths.ModeTracking, rths.ModeMatching} {
		pre, early, final := run(mode)
		fmt.Printf("%-9v  %.3f     %.3f            %.3f\n", mode, pre, early, final)
	}
	fmt.Println()
	fmt.Println("tracking heads for the new equilibrium immediately; matching's uniform")
	fmt.Println("average keeps recommending the capacity distribution that no longer exists.")
}
