// Churn: viewers join, leave and zap channels under a replayable
// Poisson/Zipf workload while RTHS keeps re-balancing inside every channel
// and helper re-allocation epochs chase the shifting audience across
// channels. Demonstrates trace generation, replay through the cluster
// runtime (the engine behind rths-cluster), and per-epoch welfare /
// continuity as the QoE readout.
package main

import (
	"fmt"
	"log"

	"rths"
)

func main() {
	const (
		channels    = 4
		epochStages = 50
		epochs      = 8
		horizon     = epochStages * epochs
		bitrate     = 300.0
	)
	workload, err := rths.GenerateChurn(rths.ChurnConfig{
		Horizon:      horizon,
		ArrivalRate:  0.4, // ~160 arrivals over the run
		MeanLifetime: 120,
		Channels:     channels,
		ZipfS:        1,
		SwitchRate:   0.005,
		Seed:         11,
	})
	if err != nil {
		log.Fatal(err)
	}
	// The cluster pre-seeds viewers with low global ids (and flash crowds,
	// if configured, allocate more); shift the trace's ids well past them.
	workload.OffsetPeerIDs(1 << 20)
	fmt.Printf("workload: %d events, peak audience %d, final audience %d\n",
		len(workload.Events), workload.Peak, workload.FinalActive)

	// A Zipf(1) initial audience over a shared helper pool: the adaptive
	// allocator re-assigns helpers between channels every epochStages
	// stages as the replayed churn shifts demand.
	specs, err := rths.ZipfChannels(channels, 48, 1, bitrate)
	if err != nil {
		log.Fatal(err)
	}
	c, err := rths.NewCluster(rths.ClusterConfig{
		Channels:    specs,
		Helpers:     rths.UniformHelpers(24, rths.DefaultHelperSpec()),
		Allocator:   rths.ClusterAllocGreedy,
		EpochStages: epochStages,
		Hysteresis:  400,
		Seed:        3,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	minAudience, maxAudience := c.ActivePeers(), c.ActivePeers()
	totalMoves := 0
	err = c.Replay(workload, horizon, func(m rths.ClusterEpochMetrics) {
		if m.ActivePeers < minAudience {
			minAudience = m.ActivePeers
		}
		if m.ActivePeers > maxAudience {
			maxAudience = m.ActivePeers
		}
		totalMoves += m.Moves
		fmt.Printf("epoch %d: audience %3d (+%d/-%d, %d zaps)  welfare %.3f  continuity %.3f  helper moves %d\n",
			m.Epoch, m.ActivePeers, m.Joins, m.Leaves, m.Switches,
			m.WelfareRatio, m.Continuity, m.Moves)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audience range over the run: %d..%d concurrent viewers\n", minAudience, maxAudience)
	fmt.Printf("helpers migrated across channels: %d\n", totalMoves)
}
