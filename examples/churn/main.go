// Churn: peers join and leave under a Poisson/Zipf workload while RTHS
// keeps re-balancing. Demonstrates trace generation, replay through the
// multi-channel overlay, and playback continuity as the QoE readout.
package main

import (
	"fmt"
	"log"
	"sort"

	"rths"
)

func main() {
	const (
		horizon = 2000
		bitrate = 300.0
	)
	workload, err := rths.GenerateChurn(rths.ChurnConfig{
		Horizon:      horizon,
		ArrivalRate:  0.05, // one arrival every ~20 stages
		MeanLifetime: 400,
		Channels:     2,
		ZipfS:        1,
		SwitchRate:   0.002,
		Seed:         11,
	})
	if err != nil {
		log.Fatal(err)
	}
	// The overlay pre-seeds peers with global ids 0..11; shift the trace's
	// ids past them.
	workload.OffsetPeerIDs(1000)
	fmt.Printf("workload: %d events, peak audience %d, final audience %d\n",
		len(workload.Events), workload.Peak, workload.FinalActive)

	mk := func(n int) []rths.HelperSpec {
		hs := make([]rths.HelperSpec, n)
		for j := range hs {
			hs[j] = rths.DefaultHelperSpec()
		}
		return hs
	}
	multi, err := rths.NewMultiChannel(rths.MultiChannelConfig{
		Channels: []rths.ChannelConfig{
			{Name: "main", Bitrate: bitrate, Helpers: mk(4), InitialPeers: 8},
			{Name: "alt", Bitrate: bitrate, Helpers: mk(2), InitialPeers: 4},
		},
		Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One playout buffer per global peer, created on first sight. Peers
	// watch at the channel bitrate with a 2-stage startup buffer.
	buffers := map[int]*rths.Buffer{}
	minAudience, maxAudience := 1<<31, 0
	err = multi.Replay(workload, horizon, func(res rths.MultiChannelResult) {
		if res.ActivePeers < minAudience {
			minAudience = res.ActivePeers
		}
		if res.ActivePeers > maxAudience {
			maxAudience = res.ActivePeers
		}
		for _, ch := range res.Channels {
			for i, peerID := range ch.PeerIDs {
				buf := buffers[peerID]
				if buf == nil {
					var err error
					buf, err = rths.NewBuffer(bitrate, 2)
					if err != nil {
						log.Fatal(err)
					}
					buffers[peerID] = buf
				}
				if _, err := buf.Tick(ch.Result.Rates[i]); err != nil {
					log.Fatal(err)
				}
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	// Continuity distribution across everyone who ever watched.
	continuities := make([]float64, 0, len(buffers))
	for _, b := range buffers {
		continuities = append(continuities, b.Continuity())
	}
	sort.Float64s(continuities)
	pct := func(p float64) float64 {
		idx := int(p * float64(len(continuities)-1))
		return continuities[idx]
	}
	fmt.Printf("audience range over the run: %d..%d concurrent viewers\n", minAudience, maxAudience)
	fmt.Printf("viewers with playback history: %d\n", len(continuities))
	fmt.Printf("playback continuity: p10 %.3f  median %.3f  p90 %.3f\n",
		pct(0.10), pct(0.50), pct(0.90))
}
