// Quickstart: the smallest useful RTHS program. Ten peers learn to share
// four helpers whose bandwidth drifts over [700,800,900] kbps; we print how
// close the swarm gets to the centralized optimum.
package main

import (
	"fmt"
	"log"

	"rths"
)

func main() {
	sys, err := rths.NewSystem(rths.SystemConfig{
		NumPeers: 10,
		Helpers: []rths.HelperSpec{
			rths.DefaultHelperSpec(),
			rths.DefaultHelperSpec(),
			rths.DefaultHelperSpec(),
			rths.DefaultHelperSpec(),
		},
		Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	const stages = 4000
	welfare, optimum := 0.0, 0.0
	err = sys.Run(stages, func(r rths.StageResult) {
		if r.Stage >= stages/2 {
			welfare += r.Welfare
			optimum += r.OptWelfare
		}
		if (r.Stage+1)%1000 == 0 {
			fmt.Printf("stage %4d  welfare %6.1f kbps  loads %v\n", r.Stage+1, r.Welfare, r.Loads)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntail welfare: %.1f%% of the centralized optimum\n", 100*welfare/optimum)
}
