// Distributed: the same learning dynamics, but as a real message-passing
// system — every helper is its own node with a batched per-round inbox, a
// channel-manager node hosts the peers, and the only thing a peer's policy
// ever learns is its own rate (the paper's zero-knowledge property,
// enforced by the bandit feedback). Output should match the sequential
// simulator's quality.
package main

import (
	"fmt"
	"log"

	"rths"
)

func main() {
	const (
		peers   = 10
		helpers = 4
		epochs  = 3000
	)
	specs := make([]rths.HelperSpec, helpers)
	for j := range specs {
		specs[j] = rths.DefaultHelperSpec()
	}
	rt, err := rths.NewDistributed(rths.DistributedConfig{
		NumPeers: peers,
		Helpers:  specs,
		Seed:     2024,
	})
	if err != nil {
		log.Fatal(err)
	}

	var tailWelfare, tailOptimum float64
	err = rt.Run(epochs, func(s rths.EpochStats) {
		if (s.Epoch+1)%500 == 0 {
			fmt.Printf("epoch %4d  welfare %6.1f kbps  loads %v\n", s.Epoch+1, s.Welfare, s.Loads)
		}
		if s.Epoch >= epochs/2 {
			tailWelfare += s.Welfare
			for _, c := range s.Capacities {
				tailOptimum += c
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d peers on a manager node + %d helper nodes, %d epochs, O(helpers) messages/round\n",
		peers, helpers, epochs)
	fmt.Printf("tail welfare: %.1f%% of optimum — no peer's policy ever saw another's state\n",
		100*tailWelfare/tailOptimum)
}
