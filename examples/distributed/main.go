// Distributed: the same learning dynamics, but as a real message-passing
// system — every peer and helper is a goroutine and the only thing a peer
// ever learns is its own rate (the paper's zero-knowledge property, made
// structural). Output should match the sequential simulator's quality.
package main

import (
	"fmt"
	"log"

	"rths"
)

func main() {
	const (
		peers   = 10
		helpers = 4
		epochs  = 3000
	)
	specs := make([]rths.HelperSpec, helpers)
	for j := range specs {
		specs[j] = rths.DefaultHelperSpec()
	}
	rt, err := rths.NewDistributed(rths.DistributedConfig{
		NumPeers: peers,
		Helpers:  specs,
		Seed:     2024,
	})
	if err != nil {
		log.Fatal(err)
	}

	var tailWelfare, tailOptimum float64
	err = rt.Run(epochs, func(s rths.EpochStats) {
		if (s.Epoch+1)%500 == 0 {
			fmt.Printf("epoch %4d  welfare %6.1f kbps  loads %v\n", s.Epoch+1, s.Welfare, s.Loads)
		}
		if s.Epoch >= epochs/2 {
			tailWelfare += s.Welfare
			for _, c := range s.Capacities {
				tailOptimum += c
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d peer goroutines + %d helper goroutines, %d epochs\n", peers, helpers, epochs)
	fmt.Printf("tail welfare: %.1f%% of optimum — no peer ever saw another's state\n",
		100*tailWelfare/tailOptimum)
}
