// Benchmarks regenerating every table and figure of the paper's evaluation
// (ICDCS 2014, §IV). Each benchmark runs its experiment end to end per
// iteration and reports the figure's headline quantity as a custom metric,
// so `go test -bench=. -benchmem` both times the harness and re-derives the
// paper's qualitative results:
//
//	Fig 1: worst-player regret → ~0      (worst_regret_kbps)
//	Fig 2: RTHS ≈ centralized MDP        (welfare_frac)
//	Fig 3: even helper loads             (load_cv)
//	Fig 4: fair per-peer bandwidth       (jain)
//	Fig 5: server load ≈ minimum deficit (load_over_deficit)
//	A1:    best response oscillates      (rths/br switch rates)
//	A2:    tracking adapts, matching lags (early post-swap share)
//	A3/A4: parameter and recursion ablations
//
// The sizes are trimmed relative to cmd/figures so a full -bench=. pass
// stays in CI budget; the shapes are identical.
package rths_test

import (
	"testing"

	"rths"
	"rths/internal/experiment"
	"rths/internal/regret"
)

func benchScenario(stages int) rths.Scenario {
	s := rths.SmallScale()
	s.Stages = stages
	s.Seed = 1
	return s
}

func BenchmarkFig1WorstRegret(b *testing.B) {
	s := rths.LargeScale()
	s.NumPeers, s.NumHelpers, s.Stages = 60, 8, 1200
	var final float64
	for i := 0; i < b.N; i++ {
		res, err := rths.Fig1(s)
		if err != nil {
			b.Fatal(err)
		}
		final = res.Final
	}
	b.ReportMetric(final, "worst_regret_kbps")
}

func BenchmarkFig2WelfareVsMDP(b *testing.B) {
	s := benchScenario(2000)
	var ratio, opt float64
	for i := 0; i < b.N; i++ {
		res, err := rths.Fig2(s)
		if err != nil {
			b.Fatal(err)
		}
		ratio, opt = res.TailRatio, res.MDPOptimum
	}
	b.ReportMetric(ratio, "welfare_frac")
	b.ReportMetric(opt, "mdp_optimum_kbps")
}

func BenchmarkFig3HelperLoad(b *testing.B) {
	s := benchScenario(2000)
	var cv float64
	for i := 0; i < b.N; i++ {
		res, err := rths.Fig3(s)
		if err != nil {
			b.Fatal(err)
		}
		cv = res.TailCV
	}
	b.ReportMetric(cv, "load_cv")
}

func BenchmarkFig4PeerRates(b *testing.B) {
	s := benchScenario(2000)
	var jain float64
	for i := 0; i < b.N; i++ {
		res, err := rths.Fig4(s)
		if err != nil {
			b.Fatal(err)
		}
		jain = res.Jain
	}
	b.ReportMetric(jain, "jain")
}

func BenchmarkFig5ServerLoad(b *testing.B) {
	s := benchScenario(2000)
	s.DemandPerPeer = 600
	var frac float64
	for i := 0; i < b.N; i++ {
		res, err := rths.Fig5(s)
		if err != nil {
			b.Fatal(err)
		}
		frac = res.TailGapFraction
	}
	b.ReportMetric(frac, "load_over_deficit")
}

func BenchmarkAblationBestResponseOscillation(b *testing.B) {
	s := benchScenario(1500)
	var rths0, br float64
	for i := 0; i < b.N; i++ {
		stats, err := experiment.AblationPolicies(s)
		if err != nil {
			b.Fatal(err)
		}
		for _, st := range stats {
			switch st.Policy {
			case "rths":
				rths0 = st.SwitchRate
			case "best-response":
				br = st.SwitchRate
			}
		}
	}
	b.ReportMetric(rths0, "rths_switch_rate")
	b.ReportMetric(br, "best_response_switch_rate")
}

func BenchmarkAblationTrackingVsMatching(b *testing.B) {
	s := benchScenario(3000)
	var track, match float64
	for i := 0; i < b.N; i++ {
		tr, err := experiment.AblationShift(s, regret.ModeTracking)
		if err != nil {
			b.Fatal(err)
		}
		ma, err := experiment.AblationShift(s, regret.ModeMatching)
		if err != nil {
			b.Fatal(err)
		}
		track, match = tr.EarlyPostShare, ma.EarlyPostShare
	}
	b.ReportMetric(track, "tracking_early_share")
	b.ReportMetric(match, "matching_early_share")
}

func BenchmarkAblationStepSize(b *testing.B) {
	s := benchScenario(1000)
	var worstWelfare float64
	for i := 0; i < b.N; i++ {
		pts, err := experiment.AblationSweep(s,
			[]float64{0.01, 0.05}, []float64{0.05}, []float64{0.05, 0.5})
		if err != nil {
			b.Fatal(err)
		}
		worstWelfare = 1
		for _, p := range pts {
			if p.WelfareFraction < worstWelfare {
				worstWelfare = p.WelfareFraction
			}
		}
	}
	b.ReportMetric(worstWelfare, "min_welfare_frac_over_sweep")
}

func BenchmarkAblationPaperExactRecursion(b *testing.B) {
	s := benchScenario(1500)
	var tracking, paperExact float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.AblationRecursion(s)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			switch r.Mode {
			case regret.ModeTracking:
				tracking = r.WelfareFraction
			case regret.ModePaperExact:
				paperExact = r.WelfareFraction
			default:
			}
		}
	}
	b.ReportMetric(tracking, "tracking_welfare_frac")
	b.ReportMetric(paperExact, "paper_exact_welfare_frac")
}

// BenchmarkDistributedRuntime times the batched message-passing protocol
// end to end — the concurrency cost of the distributed implementation
// versus the sequential simulator (BenchmarkSequentialSystem).
func BenchmarkDistributedRuntime(b *testing.B) {
	specs := make([]rths.HelperSpec, 4)
	for j := range specs {
		specs[j] = rths.DefaultHelperSpec()
	}
	for i := 0; i < b.N; i++ {
		rt, err := rths.NewDistributed(rths.DistributedConfig{NumPeers: 10, Helpers: specs, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := rt.Run(500, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSequentialSystem(b *testing.B) {
	specs := make([]rths.HelperSpec, 4)
	for j := range specs {
		specs[j] = rths.DefaultHelperSpec()
	}
	for i := 0; i < b.N; i++ {
		sys, err := rths.NewSystem(rths.SystemConfig{NumPeers: 10, Helpers: specs, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Run(500, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)*500/b.Elapsed().Seconds(), "stages/sec")
}

// benchHotPath measures the steady-state per-stage cost of System.Step —
// construction excluded, so allocs/op is the per-stage allocation count
// (pinned to 0 by TestStepZeroAllocs) and ns/op is the stage latency.
func benchHotPath(b *testing.B, peers, helpers, workers int) {
	specs := make([]rths.HelperSpec, helpers)
	for j := range specs {
		specs[j] = rths.DefaultHelperSpec()
	}
	sys, err := rths.NewSystem(rths.SystemConfig{
		NumPeers: peers, Helpers: specs, Seed: 1, Workers: workers,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Warm up learners and buffers so b.N stages measure steady state.
	if err := sys.Run(8, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "stages/sec")
	b.ReportMetric(float64(b.N)*float64(peers)/b.Elapsed().Seconds(), "peerstages/sec")
}

// BenchmarkHotPathStep tracks the stage-engine throughput across population
// scales; cmd/hotbench emits the same quantities to BENCH_hotpath.json so
// the trajectory is recorded across PRs.
func BenchmarkHotPathStep(b *testing.B) {
	b.Run("N=10/H=4/seq", func(b *testing.B) { benchHotPath(b, 10, 4, 0) })
	b.Run("N=1000/H=16/seq", func(b *testing.B) { benchHotPath(b, 1000, 16, 0) })
	b.Run("N=1000/H=16/workers=8", func(b *testing.B) { benchHotPath(b, 1000, 16, 8) })
	b.Run("N=100000/H=16/seq", func(b *testing.B) { benchHotPath(b, 100000, 16, 0) })
	b.Run("N=100000/H=16/workers=8", func(b *testing.B) { benchHotPath(b, 100000, 16, 8) })
}

// benchViewStep measures the partial-view stage engine at a fixed H=256
// pool with varying view bounds (0 = full views): per-stage cost must
// scale with the view size v, not the pool size H.
func benchViewStep(b *testing.B, peers, helpers, viewSize int) {
	specs := make([]rths.HelperSpec, helpers)
	for j := range specs {
		specs[j] = rths.DefaultHelperSpec()
	}
	sys, err := rths.NewSystem(rths.SystemConfig{
		NumPeers: peers, Helpers: specs, Seed: 1, ViewSize: viewSize,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Run(8, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "stages/sec")
	b.ReportMetric(float64(b.N)*float64(peers)/b.Elapsed().Seconds(), "peerstages/sec")
}

// BenchmarkViewStep tracks the O(v) vs O(H) per-update claim; cmd/hotbench
// records the same pair (views-256h-full / views-256h-v16) in
// BENCH_hotpath.json so the gap is gated across PRs.
func BenchmarkViewStep(b *testing.B) {
	b.Run("N=128/H=256/full", func(b *testing.B) { benchViewStep(b, 128, 256, 0) })
	b.Run("N=128/H=256/v=16", func(b *testing.B) { benchViewStep(b, 128, 256, 16) })
	b.Run("N=128/H=256/v=4", func(b *testing.B) { benchViewStep(b, 128, 256, 4) })
}

// benchCluster measures the multi-channel cluster runtime end to end:
// Markov-switching viewers, parallel channel stepping, and a re-allocation
// boundary every epoch.
func benchCluster(b *testing.B, channels, peers, helpers, workers int) {
	sc := rths.ClusterSmall()
	sc.Channels, sc.TotalPeers, sc.Helpers, sc.Workers = channels, peers, helpers, workers
	sc.EpochStages = 10
	sc.FlashPeers = 0
	cfg, err := sc.Build()
	if err != nil {
		b.Fatal(err)
	}
	c, err := rths.NewCluster(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.RunEpoch(); err != nil { // warmup epoch
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.RunEpoch(); err != nil {
			b.Fatal(err)
		}
	}
	stages := float64(b.N) * float64(sc.EpochStages)
	b.ReportMetric(stages/b.Elapsed().Seconds(), "stages/sec")
	b.ReportMetric(stages*float64(peers)/b.Elapsed().Seconds(), "peerstages/sec")
}

// BenchmarkClusterEpoch tracks the cluster engine's throughput; the same
// shapes are recorded to BENCH_hotpath.json by cmd/hotbench.
func BenchmarkClusterEpoch(b *testing.B) {
	b.Run("C=20/N=1000/H=40/seq", func(b *testing.B) { benchCluster(b, 20, 1000, 40, 0) })
	b.Run("C=20/N=1000/H=40/workers=4", func(b *testing.B) { benchCluster(b, 20, 1000, 40, 4) })
	b.Run("C=100/N=10000/H=150/workers=4", func(b *testing.B) { benchCluster(b, 100, 10000, 150, 4) })
}

// BenchmarkStressScenario runs the LargeScale-derived stress scenario end
// to end (construction included) on the parallel engine.
func BenchmarkStressScenario(b *testing.B) {
	s := rths.StressScale()
	s.NumPeers, s.NumHelpers, s.Stages = 2000, 32, 200
	specs := make([]rths.HelperSpec, s.NumHelpers)
	for j := range specs {
		specs[j] = rths.HelperSpec{Levels: s.Levels, SwitchProb: s.SwitchProb, InitState: -1}
	}
	for i := 0; i < b.N; i++ {
		sys, err := rths.NewSystem(rths.SystemConfig{
			NumPeers: s.NumPeers, Helpers: specs, Seed: s.Seed, Workers: s.Workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Run(s.Stages, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)*float64(s.Stages)/b.Elapsed().Seconds(), "stages/sec")
}
