module rths

go 1.24
